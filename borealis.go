// Package borealis is a from-scratch Go implementation of DPC (Delay,
// Process, and Correct), the fault-tolerance protocol of the Borealis
// distributed stream processing engine (Balazinska, Balakrishnan, Madden,
// Stonebraker — "Fault-Tolerance in the Borealis Distributed Stream
// Processing System", SIGMOD 2005 / TODS).
//
// The library contains a complete single-node stream processing engine
// (Filter, Map, Aggregate, SJoin, Union operators over timestamped tuple
// streams), the DPC extensions (SUnion serialization with boundary tuples,
// SOutput stream stabilization, tentative/undo/rec-done tuple semantics,
// checkpoint/redo reconciliation), and a distributed layer (replicated
// processing nodes, consistency managers with keep-alive monitoring and
// Table II upstream switching, the inter-replica stagger protocol, DPC
// data sources and client proxies) — all running on a deterministic
// virtual-time simulator with a failure-injecting network.
//
// # Quick start
//
//	dep, err := borealis.BuildChain(borealis.ChainSpec{
//		Depth:    1,
//		Replicas: 2,
//		Sources:  3,
//		Rate:     500,
//		Delay:    2 * borealis.Second, // availability bound D
//	})
//	if err != nil { ... }
//	dep.DisconnectSource(1, 10*borealis.Second, 5*borealis.Second)
//	dep.Start()
//	dep.RunFor(60 * borealis.Second)
//	fmt.Printf("%+v\n", dep.Client.Stats())
//
// Custom query diagrams are assembled with NewDiagramBuilder and executed
// on processing nodes via NewNode; see examples/ for complete programs.
package borealis

import (
	"borealis/internal/client"
	"borealis/internal/deploy"
	"borealis/internal/diagram"
	"borealis/internal/fuzz"
	"borealis/internal/netsim"
	"borealis/internal/node"
	"borealis/internal/operator"
	"borealis/internal/runtime"
	"borealis/internal/scenario"
	"borealis/internal/source"
	"borealis/internal/tuple"
	"borealis/internal/vtime"
)

// Time units, in microseconds of clock time (virtual or scaled wall).
const (
	Microsecond = vtime.Microsecond
	Millisecond = vtime.Millisecond
	Second      = vtime.Second
)

// Execution substrate: the Clock scheduling seam and its two runtimes.
type (
	// Clock is the scheduling interface every component runs against;
	// see docs/RUNTIME.md for the contract.
	Clock = runtime.Clock
	// Timer is a cancelable scheduled callback.
	Timer = runtime.Timer
	// Ticker is a periodic callback.
	Ticker = runtime.Ticker
	// VirtualClock is the deterministic simulation runtime.
	VirtualClock = runtime.VirtualClock
	// WallClock is the real-time runtime (optionally time-scaled).
	WallClock = runtime.WallClock
	// Sim is the underlying discrete-event simulator of a VirtualClock.
	Sim = vtime.Sim
	// Net is the simulated network: reliable in-order links with
	// partitions and crash failures.
	Net = netsim.Net
)

// Runtime is the entry point tying a clock to the build/run surface: the
// same topology specs and scenario files execute on either substrate.
//
//	rt := borealis.NewSimRuntime()            // deterministic, instant
//	rt := borealis.NewRealtimeRuntime(100)    // wall clock at 100×
//	dep, err := rt.BuildTopology(spec)
//	rep, err := rt.RunScenario(scn, opts)
type Runtime struct {
	rt runtime.Runtime
}

// NewSimRuntime returns a virtual-time runtime: runs are deterministic,
// bit-identical across repetitions, and execute as fast as the CPU allows.
func NewSimRuntime() *Runtime { return &Runtime{rt: runtime.NewVirtual()} }

// NewRealtimeRuntime returns a wall-clock runtime. Speed scales time:
// 1 is true real time, 100 packs 100 virtual seconds into one wall second,
// 0 means 1. Scheduling stays single-threaded through the run loop; see
// docs/RUNTIME.md for the wall-clock caveats.
func NewRealtimeRuntime(speed float64) *Runtime {
	return &Runtime{rt: runtime.NewWall(speed)}
}

// Clock exposes the runtime's scheduling surface.
func (r *Runtime) Clock() Clock { return r.rt }

// RunFor drives the runtime for d microseconds of clock time.
func (r *Runtime) RunFor(d int64) { r.rt.RunFor(d) }

// BuildTopology assembles a deployment on this runtime's clock.
func (r *Runtime) BuildTopology(spec TopologySpec) (*Deployment, error) {
	return deploy.BuildTopologyOn(r.rt, spec)
}

// RunScenario executes a scenario on this runtime. On a sim runtime the
// report is deterministic (same spec + seed ⇒ identical report); on a
// realtime runtime the run is paced against the wall and the consistency
// reference still executes on a private virtual clock. Scenarios schedule
// from t=0, so the runtime must not have been driven yet — one Runtime
// per scenario run; a reused clock is rejected with an error.
func (r *Runtime) RunScenario(s *Scenario, opts ScenarioOptions) (*ScenarioReport, error) {
	opts.Runtime = r.rt
	return scenario.Run(s, opts)
}

// NewSim returns a fresh simulator.
//
// Deprecated: use NewSimRuntime, which carries the same simulator behind
// the Clock interface; Sim remains for direct event-queue access.
func NewSim() *Sim { return vtime.New() }

// NewNet returns a network fabric on the simulator.
//
// Deprecated: use NewNetOn with a Clock; this shim wraps the simulator.
func NewNet(sim *Sim) *Net { return netsim.New(runtime.Virtual(sim)) }

// NewNetOn returns a network fabric scheduling on the given clock.
func NewNetOn(clk Clock) *Net { return netsim.New(clk) }

// Data model (§4.1 of the paper).
type (
	// Tuple is a stream element: INSERTION, TENTATIVE, BOUNDARY, UNDO
	// or REC_DONE.
	Tuple = tuple.Tuple
	// TupleType is the tuple_type header field.
	TupleType = tuple.Type
)

// Tuple types.
const (
	Insertion = tuple.Insertion
	Tentative = tuple.Tentative
	Boundary  = tuple.Boundary
	Undo      = tuple.Undo
	RecDone   = tuple.RecDone
)

// Operators.
type (
	// Operator is a query-diagram node.
	Operator = operator.Operator
	// SUnion is the DPC data-serializing operator (§4.2).
	SUnion = operator.SUnion
	// SUnionConfig parameterizes an SUnion.
	SUnionConfig = operator.SUnionConfig
	// SOutput stabilizes output streams (§4.4.2).
	SOutput = operator.SOutput
	// AggregateConfig parameterizes windowed aggregates.
	AggregateConfig = operator.AggregateConfig
	// JoinConfig parameterizes SJoin.
	JoinConfig = operator.JoinConfig
	// AggFunc selects the aggregate function.
	AggFunc = operator.AggFunc
	// DelayPolicy selects the availability/consistency trade-off (§6).
	DelayPolicy = operator.DelayPolicy
)

// Aggregate functions.
const (
	AggCount = operator.AggCount
	AggSum   = operator.AggSum
	AggAvg   = operator.AggAvg
	AggMin   = operator.AggMin
	AggMax   = operator.AggMax
)

// Delay policies (§6).
const (
	PolicyNone    = operator.PolicyNone
	PolicyProcess = operator.PolicyProcess
	PolicyDelay   = operator.PolicyDelay
	PolicySuspend = operator.PolicySuspend
)

// Operator constructors.
var (
	NewFilter    = operator.NewFilter
	NewMap       = operator.NewMap
	NewUnion     = operator.NewUnion
	NewAggregate = operator.NewAggregate
	NewSJoin     = operator.NewSJoin
	NewSUnion    = operator.NewSUnion
	NewSOutput   = operator.NewSOutput
)

// Query diagrams (§2.1).
type (
	// Diagram is a validated loop-free operator graph.
	Diagram = diagram.Diagram
	// DiagramBuilder assembles diagrams.
	DiagramBuilder = diagram.Builder
	// DPCOptions configures the §3 diagram extensions.
	DPCOptions = diagram.DPCOptions
)

// NewDiagramBuilder returns an empty builder.
func NewDiagramBuilder() *DiagramBuilder { return diagram.NewBuilder() }

// Processing nodes, sources and clients.
type (
	// Node is a DPC processing node (§3-§4).
	Node = node.Node
	// NodeConfig parameterizes a node.
	NodeConfig = node.Config
	// StreamState is the advertised consistency state.
	StreamState = node.StreamState
	// BufferMode selects §8.1 output-buffer behaviour.
	BufferMode = node.BufferMode
	// Source is a DPC data source (§2.2).
	Source = source.Source
	// SourceConfig parameterizes a source.
	SourceConfig = source.Config
	// Client is a DPC client application behind a proxy node.
	Client = client.Client
	// ClientConfig parameterizes a client.
	ClientConfig = client.Config
	// ClientStats are the client-side metrics (Procnew, Ntentative, …).
	ClientStats = client.Stats
	// Delivery is one tuple delivered to a client, with its arrival time.
	Delivery = client.Delivery
)

// Node states (Fig. 5).
const (
	StateStable        = node.StateStable
	StateUpFailure     = node.StateUpFailure
	StateStabilization = node.StateStabilization
	StateFailure       = node.StateFailure
)

// Buffer modes (§8.1).
const (
	BufferUnbounded = node.BufferUnbounded
	BufferBlock     = node.BufferBlock
	BufferSlide     = node.BufferSlide
)

// NewNode builds a processing node on the network.
//
// Deprecated: use NewNodeOn with a Clock; this shim wraps the simulator.
func NewNode(sim *Sim, net *Net, d *Diagram, cfg NodeConfig) (*Node, error) {
	return node.New(runtime.Virtual(sim), net, d, cfg)
}

// NewNodeOn builds a processing node scheduling on the given clock.
func NewNodeOn(clk Clock, net *Net, d *Diagram, cfg NodeConfig) (*Node, error) {
	return node.New(clk, net, d, cfg)
}

// NewSource builds a data source.
//
// Deprecated: use NewSourceOn with a Clock; this shim wraps the simulator.
func NewSource(sim *Sim, net *Net, cfg SourceConfig) *Source {
	return source.New(runtime.Virtual(sim), net, cfg)
}

// NewSourceOn builds a data source scheduling on the given clock.
func NewSourceOn(clk Clock, net *Net, cfg SourceConfig) *Source {
	return source.New(clk, net, cfg)
}

// NewClient builds a client and its DPC proxy node.
//
// Deprecated: use NewClientOn with a Clock; this shim wraps the simulator.
func NewClient(sim *Sim, net *Net, cfg ClientConfig) (*Client, error) {
	return client.New(runtime.Virtual(sim), net, cfg)
}

// NewClientOn builds a client and proxy scheduling on the given clock.
func NewClientOn(clk Clock, net *Net, cfg ClientConfig) (*Client, error) {
	return client.New(clk, net, cfg)
}

// Deployments.
type (
	// ChainSpec describes a replicated chain deployment (Figs. 12, 14).
	ChainSpec = deploy.ChainSpec
	// SUnionTreeSpec describes the Fig. 10 single-node SUnion tree.
	SUnionTreeSpec = deploy.SUnionTreeSpec
	// Deployment is a running system: sources, nodes, client.
	Deployment = deploy.Deployment
	// TopologySpec describes an arbitrary-DAG deployment: sources, a
	// loop-free graph of replicated node groups, and a client.
	TopologySpec = deploy.TopologySpec
	// TopologySource describes one data source of a TopologySpec.
	TopologySource = deploy.TopologySource
	// NodeGroup describes one replicated logical node of a TopologySpec.
	NodeGroup = deploy.NodeGroup
	// TopologyClient configures the client proxy of a TopologySpec.
	TopologyClient = deploy.TopologyClient
)

// BuildChain assembles a replicated chain deployment.
func BuildChain(spec ChainSpec) (*Deployment, error) { return deploy.BuildChain(spec) }

// BuildSUnionTree assembles the Fig. 10/11 deployment.
func BuildSUnionTree(spec SUnionTreeSpec) (*Deployment, error) {
	return deploy.BuildSUnionTree(spec)
}

// BuildTopology assembles a deployment over an arbitrary DAG of replicated
// node groups; BuildChain and BuildSUnionTree are presets over it.
func BuildTopology(spec TopologySpec) (*Deployment, error) { return deploy.BuildTopology(spec) }

// GroupReplicaID names replica r of a logical node: ("n2", 1) → "n2b".
func GroupReplicaID(group string, replica int) string {
	return deploy.GroupReplicaID(group, replica)
}

// Scenario engine (declarative topologies + failure schedules).
type (
	// Scenario is a declarative spec: topology, workload shapes and a
	// timed fault schedule (see docs/SCENARIOS.md for the file format).
	Scenario = scenario.Spec
	// ScenarioOptions tunes a scenario run (quick mode, audit skip).
	ScenarioOptions = scenario.Options
	// ScenarioReport is the structured, deterministic metrics report.
	ScenarioReport = scenario.Report
	// SweepSpec varies one numeric scenario field across a range.
	SweepSpec = scenario.SweepSpec
	// SweepRow is one step of a sweep: the applied value and its report.
	SweepRow = scenario.SweepRow
	// GridSpec crosses two sweeps into a Steps₁ × Steps₂ run family.
	GridSpec = scenario.GridSpec
	// GridCell is one cell of a grid: both applied values and the report.
	GridCell = scenario.GridCell
)

// LoadScenario reads and validates a scenario file.
func LoadScenario(path string) (*Scenario, error) { return scenario.Load(path) }

// ParseScenario decodes and validates a scenario spec from JSON.
func ParseScenario(data []byte) (*Scenario, error) { return scenario.Parse(data) }

// RunScenario executes a scenario on the virtual-time simulator and
// returns its metrics report. Same spec + same seed ⇒ identical report.
func RunScenario(s *Scenario, opts ScenarioOptions) (*ScenarioReport, error) {
	return scenario.Run(s, opts)
}

// BuildScenario compiles a scenario into a deployment (workloads and
// faults installed) without running it.
func BuildScenario(s *Scenario, opts ScenarioOptions) (*Deployment, error) {
	return scenario.Build(s, opts)
}

// RunMany executes N independent scenario runs across a worker pool
// (ScenarioOptions.Parallelism; 0 = one worker per core) and returns the
// reports in input order. Each run owns a private virtual clock, so the
// results are byte-identical regardless of worker count.
func RunMany(specs []*Scenario, opts ScenarioOptions) ([]*ScenarioReport, error) {
	return scenario.RunMany(specs, opts)
}

// Sweep varies one scenario field across a range, fanning the steps over
// the RunMany pool, and returns one row per swept value.
func Sweep(base *Scenario, sw SweepSpec, opts ScenarioOptions) ([]SweepRow, error) {
	return scenario.Sweep(base, sw, opts)
}

// Grid crosses two sweeps into a Steps₁ × Steps₂ family of independent
// runs — the paper's two-parameter surfaces (Fig. 19's delay × duration)
// from one call — returned row-major: cell (i, j) at index i·Steps₂ + j.
func Grid(base *Scenario, g GridSpec, opts ScenarioOptions) ([]GridCell, error) {
	return scenario.Grid(base, g, opts)
}

// ReportMetric extracts one scalar metric from a scenario report by name;
// ReportMetricNames lists the valid names.
func ReportMetric(r *ScenarioReport, name string) (float64, error) {
	return scenario.Metric(r, name)
}

// ReportMetricNames are the metric names ReportMetric resolves.
var ReportMetricNames = scenario.MetricNames

// Repeated measurements (seed families).
type (
	// MetricStats are min/mean/max of one metric across a seed family.
	MetricStats = scenario.MetricStats
	// RepeatRow is one swept value run as a seed family.
	RepeatRow = scenario.RepeatRow
)

// SeedFamily returns n clones of a scenario whose seeds derive from
// (base seed, index): repeated measurements of the same topology and
// fault schedule under decorrelated workload jitter. Feed the family to
// RunMany.
func SeedFamily(base *Scenario, n int) []*Scenario { return scenario.SeedFamily(base, n) }

// RepeatStats computes min/mean/max for every report metric across a
// family of reports.
func RepeatStats(reports []*ScenarioReport) ([]MetricStats, error) {
	return scenario.RepeatStats(reports)
}

// SweepRepeat runs every swept value as an n-member seed family through
// the RunMany pool and reports per-value min/mean/max for each metric.
func SweepRepeat(base *Scenario, sw SweepSpec, repeat int, opts ScenarioOptions) ([]RepeatRow, error) {
	return scenario.SweepRepeat(base, sw, repeat, opts)
}

// Crash-consistency fuzzing (see docs/FUZZING.md).
type (
	// FuzzOptions tunes a fuzzing campaign (master seed, run count,
	// parallelism, shrinking).
	FuzzOptions = fuzz.Options
	// FuzzSummary is a campaign's deterministic result.
	FuzzSummary = fuzz.Summary
	// FuzzFailure is one failing generated scenario with its findings
	// and minimized reproducer.
	FuzzFailure = fuzz.Failure
	// FuzzFinding is one oracle violation.
	FuzzFinding = fuzz.Finding
	// ShrinkResult is a minimized failing spec with its findings.
	ShrinkResult = fuzz.ShrinkResult
)

// FuzzSpec deterministically generates a valid random scenario from a
// seed: a layered DAG of replicated node groups, shaped workloads, and a
// fault schedule that goes quiet before the run ends.
func FuzzSpec(seed int64) *Scenario { return fuzz.GenSpec(seed) }

// FuzzCheck audits a scenario report against the structural oracles (no
// wedged SUnion buckets after the schedule goes quiet, no starved stable
// streams, availability and report invariants). The spec must be the one
// the report came from.
func FuzzCheck(s *Scenario, rep *ScenarioReport) []FuzzFinding { return fuzz.Check(s, rep) }

// Fuzz runs a fuzzing campaign: generate, execute through the RunMany
// pool with the Definition 1 audit, oracle-check, and shrink failures.
// Same options ⇒ byte-identical summary, for any parallelism.
func Fuzz(opts FuzzOptions) (*FuzzSummary, error) { return fuzz.Campaign(opts) }

// Shrink minimizes a spec that fails the named oracle by deterministic
// greedy reduction, re-running the oracle at every step; maxRuns bounds
// the reduction budget (0 = default).
func Shrink(s *Scenario, oracle string, maxRuns int) ShrinkResult {
	return fuzz.Shrink(s, oracle, maxRuns)
}

// Soak campaigns: the fuzzer's long-running, resumable form.
type (
	// SoakOptions tunes a soak campaign (seed, batch size, wall budget,
	// mutation pool, checkpoint file).
	SoakOptions = fuzz.SoakOptions
	// SoakState is a campaign's complete progress — the checkpoint on
	// disk and the returned summary are this one structure.
	SoakState = fuzz.SoakState
	// SoakFinding is one unique failure class (oracle + shrunk-spec
	// hash) with its first occurrence and a hit count.
	SoakFinding = fuzz.SoakFinding
)

// Soak runs a time-budgeted, checkpointed fuzzing campaign: batches of
// fresh generations interleaved with corpus mutants, failures shrunk
// and deduplicated, state rewritten to disk after every batch so an
// interrupted soak resumes with byte-identical results.
func Soak(opts SoakOptions) (*SoakState, error) { return fuzz.Soak(opts) }

// FuzzMutate derives a new valid scenario from a base spec by applying
// random edits — the shrinker's reductions in reverse (fault
// perturbation, relay-node insertion, rate and replica rescaling).
// Deterministic in (base, seed).
func FuzzMutate(base *Scenario, seed int64) *Scenario { return fuzz.Mutate(base, seed) }

// CheckDifferential runs one spec several ways that must agree —
// virtual vs high-speed wall clock (same stable output), serial vs
// parallel RunMany (byte-identical reports) — and reports divergences
// as "differential" findings, shrinkable like any other class.
func CheckDifferential(s *Scenario) []FuzzFinding { return fuzz.CheckDifferential(s) }
