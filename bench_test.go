// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5-§7), one per experiment, at reduced sweep sizes (Options.Quick). The
// full sweeps run via `go run ./cmd/borealis-sim all`; EXPERIMENTS.md
// records the paper-vs-measured comparison.
//
// Each benchmark reports the experiment's headline metric with
// b.ReportMetric, so `go test -bench . -benchmem` doubles as a smoke-check
// that the reproduced shapes still hold.
package borealis_test

import (
	"testing"

	"borealis/internal/experiment"
)

var quick = experiment.Options{Quick: true}

// BenchmarkFig11a regenerates Fig. 11(a): eventual consistency under two
// overlapping failures on the Fig. 10 SUnion tree.
func BenchmarkFig11a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig11(true, quick)
		if !r.ConsistencyOK || r.Reconciliations != 1 {
			b.Fatalf("fig11a shape broken: %+v", r)
		}
		b.ReportMetric(float64(r.Tentative), "tentative")
	}
}

// BenchmarkFig11b regenerates Fig. 11(b): a failure striking during
// recovery, yielding two correction sequences.
func BenchmarkFig11b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig11(false, quick)
		if !r.ConsistencyOK || r.Reconciliations != 2 {
			b.Fatalf("fig11b shape broken: %+v", r)
		}
		b.ReportMetric(float64(r.RecDones), "rec_dones")
	}
}

// BenchmarkTable3 regenerates Table III: Procnew constant ≈ 0.9·D + normal
// processing, independent of failure duration, below the 3 s bound.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Table3(quick)
		last := r.Procnew[len(r.Procnew)-1]
		if last > 3.0 {
			b.Fatalf("Table III availability bound broken: %.2fs", last)
		}
		for _, ok := range r.ConsistencyOK {
			if !ok {
				b.Fatal("Table III consistency audit failed")
			}
		}
		b.ReportMetric(last, "procnew_s")
	}
}

// BenchmarkFig13 regenerates Fig. 13: the six §6.1 delay-policy variants.
func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig13(quick)
		// Delay & Delay (index 3) must produce fewer tentative tuples
		// than Process & Process (index 0) on the longest failure.
		last := len(r.Durations) - 1
		if r.Ntentative[3][last] >= r.Ntentative[0][last] {
			b.Fatalf("fig13 shape broken: D&D %d ≥ P&P %d",
				r.Ntentative[3][last], r.Ntentative[0][last])
		}
		b.ReportMetric(float64(r.Ntentative[0][last]-r.Ntentative[3][last]), "dd_savings_tuples")
	}
}

// BenchmarkFig15 regenerates Fig. 15: Procnew vs chain depth.
func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig15(quick)
		n := len(r.Depths) - 1
		// Delay & Delay grows with depth; Process & Process stays near
		// one node's delay.
		if r.DelayDelay[n] <= r.ProcProc[n] {
			b.Fatalf("fig15 shape broken: D&D %.2f ≤ P&P %.2f", r.DelayDelay[n], r.ProcProc[n])
		}
		b.ReportMetric(r.ProcProc[n], "pp_procnew_s")
	}
}

// BenchmarkFig16 regenerates Fig. 16: Ntentative vs depth, short failures.
func BenchmarkFig16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig16(quick, 5)
		p := r.Panels[0]
		n := len(p.Depths) - 1
		// Short failures: delaying reduces inconsistency with depth.
		if p.DelayDelay[n] >= p.ProcProc[n] {
			b.Fatalf("fig16 shape broken: D&D %.0f ≥ P&P %.0f", p.DelayDelay[n], p.ProcProc[n])
		}
		b.ReportMetric(p.ProcProc[n]-p.DelayDelay[n], "dd_savings_tuples")
	}
}

// BenchmarkFig18 regenerates Fig. 18: by 60 s failures the delaying gains
// have shrunk to a small fraction.
func BenchmarkFig18(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig18(quick)
		p := r.Panels[0]
		n := len(p.Depths) - 1
		rel := (p.ProcProc[n] - p.DelayDelay[n]) / p.ProcProc[n]
		if rel > 0.25 {
			b.Fatalf("fig18 shape broken: gains should fade for long failures, got %.0f%%", rel*100)
		}
		b.ReportMetric(rel*100, "dd_gain_pct")
	}
}

// BenchmarkFig19 regenerates Figs. 19-20: whole-delay assignment masks the
// 5 s failure entirely while meeting X = 8 s.
func BenchmarkFig19(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig19(quick)
		if r.TentWholePP[0] != 0 {
			b.Fatalf("fig20 shape broken: whole-delay should mask the 5s failure, got %d tentative", r.TentWholePP[0])
		}
		if r.TentUniformPP[0] == 0 {
			b.Fatal("fig20 shape broken: uniform Process&Process should NOT mask the 5s failure")
		}
		for _, p := range r.ProcWholePP {
			if p > 8.0 {
				b.Fatalf("fig19 bound broken: %.2fs > X=8s", p)
			}
		}
		b.ReportMetric(r.ProcWholePP[len(r.ProcWholePP)-1], "whole_procnew_s")
	}
}

// BenchmarkFig20 is Fig. 19's sweep viewed through Ntentative.
func BenchmarkFig20(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig19(quick)
		last := len(r.FailureSecs) - 1
		// For longer failures whole-delay performs like uniform P&P.
		diff := float64(r.TentWholePP[last]) - float64(r.TentUniformPP[last])
		if diff < 0 {
			diff = -diff
		}
		if r.TentUniformPP[last] > 0 && diff/float64(r.TentUniformPP[last]) > 0.25 {
			b.Fatalf("fig20 shape broken: whole %d vs uniform %d", r.TentWholePP[last], r.TentUniformPP[last])
		}
		b.ReportMetric(float64(r.TentWholePP[last]), "whole_tentative")
	}
}

// BenchmarkTable4 regenerates Table IV: serialization latency grows
// linearly with bucket size.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Table4(quick)
		first, last := r.Rows[1], r.Rows[len(r.Rows)-1]
		if last.Avg <= first.Avg {
			b.Fatalf("table4 shape broken: avg should grow with bucket size (%.1f vs %.1f)", first.Avg, last.Avg)
		}
		b.ReportMetric(last.Avg, "avg_latency_ms")
	}
}

// BenchmarkTable5 regenerates Table V: serialization latency grows
// linearly with the boundary interval.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Table5(quick)
		first, last := r.Rows[1], r.Rows[len(r.Rows)-1]
		if last.Avg <= first.Avg {
			b.Fatalf("table5 shape broken: avg should grow with boundary interval (%.1f vs %.1f)", first.Avg, last.Avg)
		}
		b.ReportMetric(last.Avg, "avg_latency_ms")
	}
}

// BenchmarkSwitchover regenerates the §5.1 crash-switchover measurement.
func BenchmarkSwitchover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Switchover(quick)
		if r.Tentative != 0 || !r.ConsistencyOK {
			b.Fatalf("switchover must mask the crash: %+v", r)
		}
		b.ReportMetric(r.GapMs, "gap_ms")
	}
}

// BenchmarkAblateTentativeBoundaries regenerates the footnote-5 ablation:
// with tentative boundaries, chain latency stops growing per node.
func BenchmarkAblateTentativeBoundaries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.AblateTentativeBoundaries(quick)
		n := len(r.Depths) - 1
		if r.With[n] >= r.Without[n] {
			b.Fatalf("tentative boundaries should cut deep-chain latency: %.2f ≥ %.2f", r.With[n], r.Without[n])
		}
		b.ReportMetric(r.Without[n]-r.With[n], "latency_saved_s")
	}
}

// BenchmarkAblateBuffers regenerates the §8.1 buffer-management comparison.
func BenchmarkAblateBuffers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.AblateBuffers(quick)
		if r.Rows[2].NewDuringFailure != 0 {
			b.Fatal("block-on-full must sacrifice availability")
		}
		if r.Rows[1].NewDuringFailure == 0 {
			b.Fatal("slide-on-full must preserve availability")
		}
		b.ReportMetric(float64(r.Rows[1].Truncated), "slide_truncated")
	}
}
