package borealis_test

import (
	"testing"

	"borealis"
)

// topologySpec is a small two-group DAG shared by the substrate tests.
func topologySpec() borealis.TopologySpec {
	return borealis.TopologySpec{
		Sources: []borealis.TopologySource{
			{ID: "src1", Stream: "s1", Rate: 100},
			{ID: "src2", Stream: "s2", Rate: 100},
		},
		Groups: []borealis.NodeGroup{
			{Name: "n1", Inputs: []string{"s1", "s2"}, Replicas: 2, Delay: 1 * borealis.Second},
			{Name: "n2", Inputs: []string{"n1.out"}, Replicas: 2, Delay: 1 * borealis.Second},
		},
	}
}

// TestRuntimeSurfaceParity is the redesign's core promise at the facade:
// the same TopologySpec builds and runs on NewSimRuntime and
// NewRealtimeRuntime, and both substrates deliver the same tuple stream.
func TestRuntimeSurfaceParity(t *testing.T) {
	run := func(rt *borealis.Runtime) borealis.ClientStats {
		dep, err := rt.BuildTopology(topologySpec())
		if err != nil {
			t.Fatal(err)
		}
		dep.Start()
		dep.RunFor(10 * borealis.Second)
		return dep.Client.Stats()
	}
	sim := run(borealis.NewSimRuntime())
	real := run(borealis.NewRealtimeRuntime(5000)) // 10 clock s ≈ 2 ms wall
	if sim.NewTuples == 0 {
		t.Fatal("sim runtime delivered nothing")
	}
	if sim.NewTuples != real.NewTuples || sim.Tentative != real.Tentative {
		t.Fatalf("substrates diverge: sim %+v, realtime %+v", sim, real)
	}
}

// TestRuntimeClock checks the facade clock is live and usable directly.
func TestRuntimeClock(t *testing.T) {
	rt := borealis.NewSimRuntime()
	fired := false
	rt.Clock().After(1*borealis.Second, func() { fired = true })
	rt.RunFor(2 * borealis.Second)
	if !fired {
		t.Fatal("facade clock did not fire")
	}
	if now := rt.Clock().Now(); now != 2*borealis.Second {
		t.Fatalf("Now() = %d, want %d", now, 2*borealis.Second)
	}
}

// TestRuntimeScenario runs a scenario through the facade runtime.
func TestRuntimeScenario(t *testing.T) {
	scn, err := borealis.LoadScenario("scenarios/chain-disconnect.json")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := borealis.NewSimRuntime().RunScenario(scn, borealis.ScenarioOptions{Quick: true, SkipConsistency: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Client.NewTuples == 0 {
		t.Fatal("scenario delivered nothing")
	}
}

// TestFacadeGrid drives the parallel run-family surface end to end from
// the facade: a 2×2 delay × fault-duration grid fanned across all cores,
// row-major cells, and the metric selector.
func TestFacadeGrid(t *testing.T) {
	scn, err := borealis.LoadScenario("scenarios/chain-disconnect.json")
	if err != nil {
		t.Fatal(err)
	}
	cells, err := borealis.Grid(scn, borealis.GridSpec{
		Field1: borealis.SweepSpec{Field: "delay", From: 1, To: 2, Steps: 2},
		Field2: borealis.SweepSpec{Field: "fault_duration", From: 2, To: 4, Steps: 2},
	}, borealis.ScenarioOptions{Quick: true, SkipConsistency: true, Parallelism: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("%d cells, want 4", len(cells))
	}
	if cells[1].Value1 != 1 || cells[1].Value2 != 4 {
		t.Fatalf("row-major order broken: cell 1 = (%v, %v)", cells[1].Value1, cells[1].Value2)
	}
	for _, name := range borealis.ReportMetricNames {
		if _, err := borealis.ReportMetric(cells[0].Report, name); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFacadeRunManyAndSweep covers the remaining run-family exports.
func TestFacadeRunManyAndSweep(t *testing.T) {
	scn, err := borealis.LoadScenario("scenarios/chain-disconnect.json")
	if err != nil {
		t.Fatal(err)
	}
	opts := borealis.ScenarioOptions{Quick: true, SkipConsistency: true, Parallelism: 2}
	reports, err := borealis.RunMany([]*borealis.Scenario{scn, scn}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 || reports[0].Client.NewTuples == 0 {
		t.Fatalf("RunMany misbehaved: %d reports", len(reports))
	}
	rows, err := borealis.Sweep(scn, borealis.SweepSpec{Field: "delay", From: 1, To: 2, Steps: 2}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[1].Value != 2 {
		t.Fatalf("Sweep misbehaved: %+v", rows)
	}
}
