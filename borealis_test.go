package borealis_test

import (
	"fmt"
	"testing"

	"borealis"
)

// TestFacadeQuickstart exercises the high-level deployment API end to end.
func TestFacadeQuickstart(t *testing.T) {
	dep, err := borealis.BuildChain(borealis.ChainSpec{
		Depth:    1,
		Replicas: 2,
		Sources:  3,
		Rate:     300,
		Delay:    2 * borealis.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	dep.DisconnectSource(1, 5*borealis.Second, 4*borealis.Second)
	dep.Start()
	dep.RunFor(25 * borealis.Second)
	st := dep.Client.Stats()
	if st.NewTuples == 0 {
		t.Fatal("no output")
	}
	if st.Tentative == 0 || st.Undos == 0 {
		t.Fatalf("failure handling not visible through facade: %+v", st)
	}
}

// TestFacadeCustomDiagram builds a node from the low-level API.
func TestFacadeCustomDiagram(t *testing.T) {
	sim := borealis.NewSim()
	net := borealis.NewNet(sim)
	src := borealis.NewSource(sim, net, borealis.SourceConfig{
		ID: "s", Stream: "in", Rate: 100,
	})
	b := borealis.NewDiagramBuilder()
	b.Add(borealis.NewSUnion("su", borealis.SUnionConfig{
		Ports: 1, BucketSize: 100 * borealis.Millisecond, Delay: borealis.Second,
	}))
	b.Add(borealis.NewFilter("even", func(t borealis.Tuple) bool {
		return t.Field(0)%2 == 0
	}))
	b.Add(borealis.NewSOutput("so"))
	b.Connect("su", "even", 0)
	b.Connect("even", "so", 0)
	b.Input("in", "su", 0)
	b.Output("out", "so")
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	n, err := borealis.NewNode(sim, net, d, borealis.NodeConfig{
		ID:        "n",
		Upstreams: map[string][]string{"in": {"s"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := borealis.NewClient(sim, net, borealis.ClientConfig{
		ID: "c", Stream: "out", Upstreams: []string{"n"},
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	cl.Start()
	src.Start()
	sim.RunFor(5 * borealis.Second)
	for _, tp := range cl.StableView() {
		if tp.Field(0)%2 != 0 {
			t.Fatalf("filter leaked odd tuple: %v", tp)
		}
	}
	if len(cl.StableView()) == 0 {
		t.Fatal("no stable output through custom diagram")
	}
	if n.State() != borealis.StateStable {
		t.Fatalf("node state = %v", n.State())
	}
}

// TestFacadeDPCWrap checks the §3 auto-wrapping entry point.
func TestFacadeDPCWrap(t *testing.T) {
	b := borealis.NewDiagramBuilder()
	b.Add(borealis.NewMap("double", func(d []int64) []int64 { return []int64{d[0] * 2} }))
	b.Input("in", "double", 0)
	b.Output("out", "double")
	d, err := b.WrapForDPC(borealis.DPCOptions{
		BucketSize: 100 * borealis.Millisecond,
		Delay:      borealis.Second,
	}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.SUnions()) != 1 {
		t.Fatalf("WrapForDPC should insert one input SUnion: %v", d.SUnions())
	}
}

// ExampleBuildChain demonstrates the quickstart flow for godoc.
func ExampleBuildChain() {
	dep, err := borealis.BuildChain(borealis.ChainSpec{
		Depth:    1,
		Replicas: 2,
		Sources:  3,
		Rate:     100,
		Delay:    2 * borealis.Second,
	})
	if err != nil {
		panic(err)
	}
	dep.Start()
	dep.RunFor(5 * borealis.Second)
	st := dep.Client.Stats()
	fmt.Println(st.Tentative, st.StableDuplicates)
	// Output: 0 0
}
