package borealis_test

import (
	"fmt"
	"log"
	"testing"

	"borealis"
)

// TestFacadeQuickstart exercises the high-level deployment API end to end.
func TestFacadeQuickstart(t *testing.T) {
	dep, err := borealis.BuildChain(borealis.ChainSpec{
		Depth:    1,
		Replicas: 2,
		Sources:  3,
		Rate:     300,
		Delay:    2 * borealis.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	dep.DisconnectSource(1, 5*borealis.Second, 4*borealis.Second)
	dep.Start()
	dep.RunFor(25 * borealis.Second)
	st := dep.Client.Stats()
	if st.NewTuples == 0 {
		t.Fatal("no output")
	}
	if st.Tentative == 0 || st.Undos == 0 {
		t.Fatalf("failure handling not visible through facade: %+v", st)
	}
}

// TestFacadeCustomDiagram builds a node from the low-level API.
func TestFacadeCustomDiagram(t *testing.T) {
	sim := borealis.NewSim()
	net := borealis.NewNet(sim)
	src := borealis.NewSource(sim, net, borealis.SourceConfig{
		ID: "s", Stream: "in", Rate: 100,
	})
	b := borealis.NewDiagramBuilder()
	b.Add(borealis.NewSUnion("su", borealis.SUnionConfig{
		Ports: 1, BucketSize: 100 * borealis.Millisecond, Delay: borealis.Second,
	}))
	b.Add(borealis.NewFilter("even", func(t borealis.Tuple) bool {
		return t.Field(0)%2 == 0
	}))
	b.Add(borealis.NewSOutput("so"))
	b.Connect("su", "even", 0)
	b.Connect("even", "so", 0)
	b.Input("in", "su", 0)
	b.Output("out", "so")
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	n, err := borealis.NewNode(sim, net, d, borealis.NodeConfig{
		ID:        "n",
		Upstreams: map[string][]string{"in": {"s"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := borealis.NewClient(sim, net, borealis.ClientConfig{
		ID: "c", Stream: "out", Upstreams: []string{"n"},
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	cl.Start()
	src.Start()
	sim.RunFor(5 * borealis.Second)
	for _, tp := range cl.StableView() {
		if tp.Field(0)%2 != 0 {
			t.Fatalf("filter leaked odd tuple: %v", tp)
		}
	}
	if len(cl.StableView()) == 0 {
		t.Fatal("no stable output through custom diagram")
	}
	if n.State() != borealis.StateStable {
		t.Fatalf("node state = %v", n.State())
	}
}

// TestFacadeDPCWrap checks the §3 auto-wrapping entry point.
func TestFacadeDPCWrap(t *testing.T) {
	b := borealis.NewDiagramBuilder()
	b.Add(borealis.NewMap("double", func(d []int64) []int64 { return []int64{d[0] * 2} }))
	b.Input("in", "double", 0)
	b.Output("out", "double")
	d, err := b.WrapForDPC(borealis.DPCOptions{
		BucketSize: 100 * borealis.Millisecond,
		Delay:      borealis.Second,
	}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.SUnions()) != 1 {
		t.Fatalf("WrapForDPC should insert one input SUnion: %v", d.SUnions())
	}
}

// ExampleBuildChain demonstrates the quickstart flow for godoc.
func ExampleBuildChain() {
	dep, err := borealis.BuildChain(borealis.ChainSpec{
		Depth:    1,
		Replicas: 2,
		Sources:  3,
		Rate:     100,
		Delay:    2 * borealis.Second,
	})
	if err != nil {
		panic(err)
	}
	dep.Start()
	dep.RunFor(5 * borealis.Second)
	st := dep.Client.Stats()
	fmt.Println(st.Tentative, st.StableDuplicates)
	// Output: 0 0
}

// ExampleBuildChain_quickstart is the former examples/quickstart program:
// a replicated DPC deployment surviving an input failure. Three data
// sources feed a replicated processing node whose output a DPC client
// consumes. One source disconnects for five seconds; the client keeps
// receiving results within the availability bound (tentative ones while
// the failure lasts), and after it heals the node reconciles its state and
// the client receives the corrected, stable stream.
func ExampleBuildChain_quickstart() {
	spec := borealis.ChainSpec{
		Depth:    1,                   // one level of processing nodes
		Replicas: 2,                   // each node runs as a replica pair
		Sources:  3,                   // three input streams
		Rate:     500,                 // aggregate tuples/second
		Delay:    2 * borealis.Second, // availability bound D
	}
	dep, err := borealis.BuildChain(spec)
	if err != nil {
		log.Fatal(err)
	}

	// Disconnect source 1 at t=10s for 5s. The source keeps producing
	// and logging; on reconnect it replays everything subscribers missed.
	dep.DisconnectSource(1, 10*borealis.Second, 5*borealis.Second)

	dep.Start()
	dep.RunFor(40 * borealis.Second) // virtual time: finishes in milliseconds

	st := dep.Client.Stats()
	fmt.Printf("max processing latency under bound 2s+slack: %v\n", st.MaxLatency < 3*borealis.Second)
	fmt.Printf("tentative tuples while failed: %v\n", st.Tentative > 0)
	fmt.Printf("correction sequences: %d\n", st.Undos)
	fmt.Printf("stable duplicates: %d\n", st.StableDuplicates)

	// Eventual consistency: compare against a failure-free run.
	ref, err := borealis.BuildChain(spec)
	if err != nil {
		log.Fatal(err)
	}
	ref.Start()
	ref.RunFor(40 * borealis.Second)
	audit := dep.Client.VerifyEventualConsistency(ref.Client.View())
	fmt.Printf("eventually consistent: %v\n", audit.OK)
	// Output:
	// max processing latency under bound 2s+slack: true
	// tentative tuples while failed: true
	// correction sequences: 1
	// stable duplicates: 0
	// eventually consistent: true
}

// ExampleBuildChain_failover is the former examples/chainfailover program:
// a four-level replicated chain surviving a node crash and a network
// partition at once (§2.2: DPC handles multiple failures overlapping in
// time). At t=10s the level-2 primary crashes; at t=12s a partition cuts
// the level-3 primary from its upstreams for six seconds. Downstream
// consistency managers detect both through keep-alive timeouts and missing
// boundaries, switch to the surviving replicas (Table II), and the client
// keeps receiving results.
func ExampleBuildChain_failover() {
	spec := borealis.ChainSpec{
		Depth:    4,
		Replicas: 2,
		Sources:  3,
		Rate:     500,
		Delay:    2 * borealis.Second,
	}
	dep, err := borealis.BuildChain(spec)
	if err != nil {
		log.Fatal(err)
	}

	// Crash the level-2 primary ("n2a").
	dep.CrashNode(2, 0, 10*borealis.Second)
	// Partition the level-3 primary from both level-2 replicas.
	dep.Partition("n3a", "n2a", 12*borealis.Second, 6*borealis.Second)
	dep.Partition("n3a", "n2b", 12*borealis.Second, 6*borealis.Second)

	dep.Start()
	dep.RunFor(60 * borealis.Second)

	// Which replicas ended up serving, and who switched upstreams?
	for li, row := range dep.Nodes {
		for _, n := range row {
			status := n.State().String()
			if n.Down() {
				status = "CRASHED"
			}
			fmt.Printf("level %d %s: %s switches=%d\n", li+1, n.ID(), status, n.CM().Switches)
		}
	}

	ref, err := borealis.BuildChain(spec)
	if err != nil {
		log.Fatal(err)
	}
	ref.Start()
	ref.RunFor(60 * borealis.Second)
	audit := dep.Client.VerifyEventualConsistency(ref.Client.View())
	fmt.Printf("eventually consistent: %v\n", audit.OK)
	// Output:
	// level 1 n1a: STABLE switches=0
	// level 1 n1b: STABLE switches=0
	// level 2 n2a: CRASHED switches=0
	// level 2 n2b: STABLE switches=0
	// level 3 n3a: STABLE switches=1
	// level 3 n3b: STABLE switches=1
	// level 4 n4a: STABLE switches=1
	// level 4 n4b: STABLE switches=1
	// eventually consistent: true
}

// ExampleRunScenario runs a curated declarative scenario — a diamond
// topology under two overlapping partitions — and checks its report.
// Scenario files are documented in docs/SCENARIOS.md.
func ExampleRunScenario() {
	spec, err := borealis.LoadScenario("scenarios/diamond-overlapping-partitions.json")
	if err != nil {
		log.Fatal(err)
	}
	rep, err := borealis.RunScenario(spec, borealis.ScenarioOptions{Quick: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("availability violations: %d\n", rep.Availability.Violations)
	fmt.Printf("saw tentative data: %v\n", rep.Client.Tentative > 0)
	fmt.Printf("eventually consistent: %v\n", rep.Consistency.OK)
	// Output:
	// availability violations: 0
	// saw tentative data: true
	// eventually consistent: true
}
