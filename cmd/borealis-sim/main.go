// Command borealis-sim runs the paper's experiments and prints the tables
// and figure series of the evaluation (§5-§7).
//
// Usage:
//
//	borealis-sim [-quick] <experiment>...
//	borealis-sim [-quick] all
//
// Experiments: fig11a fig11b table3 fig13 fig15 fig16 fig18 fig19 fig20
// table4 table5 switchover ablate-buffers
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"borealis/internal/experiment"
)

var experiments = []struct {
	name string
	desc string
	run  func(experiment.Options, io.Writer)
}{
	{"fig11a", "eventual consistency under overlapping failures", func(_ experiment.Options, w io.Writer) {
		experiment.Fig11(true).Print(w)
	}},
	{"fig11b", "eventual consistency with a failure during recovery", func(_ experiment.Options, w io.Writer) {
		experiment.Fig11(false).Print(w)
	}},
	{"table3", "Procnew vs failure duration (replicated node + SJoin)", func(o experiment.Options, w io.Writer) {
		experiment.Table3(o).Print(w)
	}},
	{"fig13", "six delay-policy variants: Procnew and Ntentative", func(o experiment.Options, w io.Writer) {
		experiment.Fig13(o).Print(w)
	}},
	{"fig15", "Procnew vs chain depth (30 s failure)", func(o experiment.Options, w io.Writer) {
		experiment.Fig15(o).Print(w)
	}},
	{"fig16", "Ntentative vs chain depth (5/10/15/30 s failures)", func(o experiment.Options, w io.Writer) {
		experiment.Fig16(o).Print(w)
	}},
	{"fig18", "Ntentative vs chain depth (60 s failure)", func(o experiment.Options, w io.Writer) {
		experiment.Fig18(o).Print(w)
	}},
	{"fig19", "delay assignment: Procnew (whole vs uniform)", func(o experiment.Options, w io.Writer) {
		experiment.Fig19(o).Print(w)
	}},
	{"fig20", "delay assignment: Ntentative (same sweep as fig19)", func(o experiment.Options, w io.Writer) {
		experiment.Fig19(o).Print(w)
	}},
	{"table4", "serialization overhead vs bucket size", func(o experiment.Options, w io.Writer) {
		experiment.Table4(o).Print(w)
	}},
	{"table5", "serialization overhead vs boundary interval", func(o experiment.Options, w io.Writer) {
		experiment.Table5(o).Print(w)
	}},
	{"switchover", "crash switchover gap (§5.1)", func(_ experiment.Options, w io.Writer) {
		experiment.Switchover().Print(w)
	}},
	{"ablate-buffers", "§8.1 buffer-management strategies", func(o experiment.Options, w io.Writer) {
		experiment.AblateBuffers(o).Print(w)
	}},
	{"ablate-tb", "footnote-5 tentative boundaries vs per-node waits", func(o experiment.Options, w io.Writer) {
		experiment.AblateTentativeBoundaries(o).Print(w)
	}},
}

func main() {
	quick := flag.Bool("quick", false, "reduced sweeps (seconds instead of minutes)")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	opts := experiment.Options{Quick: *quick}
	want := map[string]bool{}
	for _, a := range args {
		if a == "all" {
			for _, e := range experiments {
				want[e.name] = true
			}
			continue
		}
		found := false
		for _, e := range experiments {
			if e.name == a {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n\n", a)
			usage()
			os.Exit(2)
		}
		want[a] = true
	}
	first := true
	for _, e := range experiments {
		if !want[e.name] {
			continue
		}
		if !first {
			fmt.Println()
		}
		first = false
		start := time.Now()
		fmt.Printf("=== %s — %s ===\n", e.name, e.desc)
		e.run(opts, os.Stdout)
		fmt.Printf("(%s in %.1fs wall time)\n", e.name, time.Since(start).Seconds())
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: borealis-sim [-quick] <experiment>...|all\n\nexperiments:\n")
	for _, e := range experiments {
		fmt.Fprintf(os.Stderr, "  %-16s %s\n", e.name, e.desc)
	}
}
