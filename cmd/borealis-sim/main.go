// Command borealis-sim runs the paper's experiments and prints the tables
// and figure series of the evaluation (§5-§7), and executes declarative
// scenario files (arbitrary topologies + failure schedules) from the
// scenarios/ directory or anywhere else — on the deterministic simulator,
// paced against the wall clock, or swept across a parameter range.
//
// Usage:
//
//	borealis-sim [-quick] <experiment>...
//	borealis-sim [-quick] all
//	borealis-sim [-quick] [-json] [-no-audit] scenario <file.json>...
//	borealis-sim [-quick] [-json] [-no-audit] [-speed N] realtime <file.json>...
//	borealis-sim [-quick] [-json] [-no-audit] [-parallel N] -field F -from A -to B [-steps N] sweep <file.json>
//	borealis-sim ... -field F -from A -to B -field2 G -from2 C -to2 D [-steps2 M] [-metric M] sweep <file.json>
//	borealis-sim ... -field F -from A -to B [-steps N] -repeat R [-metric M] sweep <file.json>
//	borealis-sim [-json] [-parallel N] [-seed S] [-runs N] [-out DIR] [-no-shrink] [-fail-on-finding] fuzz
//	borealis-sim [-json] [-parallel N] [-seed S] [-batch N] [-batches N] [-budget D] [-mutate DIRS] [-differential] [-checkpoint FILE] [-out DIR] [-fail-on-finding] soak
//
// Adding -field2 turns a sweep into a two-dimensional grid (Steps ×
// Steps2 independent runs, e.g. the paper's Fig. 19 delay × duration
// surface) rendered as a matrix of one report metric (-metric); -repeat
// instead runs every swept value R times with derived seeds and reports
// min/mean/max of -metric per value. Both fan their runs across
// -parallel worker goroutines with byte-identical output regardless of
// worker count.
//
// The fuzz subcommand turns the simulator into a crash-consistency
// fuzzer: it generates -runs random scenarios from -seed (topology DAGs,
// workload shapes, fault schedules), runs each through the Definition 1
// audit plus the structural oracles of internal/fuzz, shrinks every
// failing spec to a minimal reproducer, and prints a deterministic
// findings summary (identical across repetitions and -parallel counts).
// With -out, minimized specs are written there as JSON for triage; the
// keepers graduate into scenarios/corpus/. See docs/FUZZING.md.
//
// The soak subcommand is the fuzzer's long-running form: time-budgeted
// (-budget) or batch-capped (-batches) campaigns that interleave fresh
// generations with mutants of the regression corpus and curated specs
// (-mutate), optionally replay every clean run under the differential
// oracles (-differential), deduplicate findings by oracle class +
// shrunk-spec hash, and checkpoint state after every batch (-checkpoint)
// so an interrupted soak resumes deterministically: the resumed
// campaign's state is byte-identical to an uninterrupted one.
//
// Experiments: fig11a fig11b table3 fig13 fig15 fig16 fig18 fig19 fig20
// table4 table5 switchover ablate-buffers ablate-tb
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"borealis/internal/experiment"
	"borealis/internal/fuzz"
	"borealis/internal/runtime"
	"borealis/internal/scenario"
)

var experiments = []struct {
	name string
	desc string
	run  func(experiment.Options, io.Writer)
}{
	{"fig11a", "eventual consistency under overlapping failures", func(o experiment.Options, w io.Writer) {
		experiment.Fig11(true, o).Print(w)
	}},
	{"fig11b", "eventual consistency with a failure during recovery", func(o experiment.Options, w io.Writer) {
		experiment.Fig11(false, o).Print(w)
	}},
	{"table3", "Procnew vs failure duration (replicated node + SJoin)", func(o experiment.Options, w io.Writer) {
		experiment.Table3(o).Print(w)
	}},
	{"fig13", "six delay-policy variants: Procnew and Ntentative", func(o experiment.Options, w io.Writer) {
		experiment.Fig13(o).Print(w)
	}},
	{"fig15", "Procnew vs chain depth (30 s failure)", func(o experiment.Options, w io.Writer) {
		experiment.Fig15(o).Print(w)
	}},
	{"fig16", "Ntentative vs chain depth (5/10/15/30 s failures)", func(o experiment.Options, w io.Writer) {
		experiment.Fig16(o).Print(w)
	}},
	{"fig18", "Ntentative vs chain depth (60 s failure)", func(o experiment.Options, w io.Writer) {
		experiment.Fig18(o).Print(w)
	}},
	{"fig19", "delay assignment: Procnew (whole vs uniform)", func(o experiment.Options, w io.Writer) {
		experiment.Fig19(o).Print(w)
	}},
	{"fig20", "delay assignment: Ntentative (same sweep as fig19)", func(o experiment.Options, w io.Writer) {
		experiment.Fig19(o).Print(w)
	}},
	{"table4", "serialization overhead vs bucket size", func(o experiment.Options, w io.Writer) {
		experiment.Table4(o).Print(w)
	}},
	{"table5", "serialization overhead vs boundary interval", func(o experiment.Options, w io.Writer) {
		experiment.Table5(o).Print(w)
	}},
	{"switchover", "crash switchover gap (§5.1)", func(o experiment.Options, w io.Writer) {
		experiment.Switchover(o).Print(w)
	}},
	{"ablate-buffers", "§8.1 buffer-management strategies", func(o experiment.Options, w io.Writer) {
		experiment.AblateBuffers(o).Print(w)
	}},
	{"ablate-tb", "footnote-5 tentative boundaries vs per-node waits", func(o experiment.Options, w io.Writer) {
		experiment.AblateTentativeBoundaries(o).Print(w)
	}},
}

func main() {
	quick := flag.Bool("quick", false, "reduced sweeps (seconds instead of minutes)")
	asJSON := flag.Bool("json", false, "scenario mode: emit the canonical JSON report")
	noAudit := flag.Bool("no-audit", false, "scenario mode: skip the consistency reference run")
	speed := flag.Float64("speed", 100, "realtime mode: time-scale factor (1 = true real time)")
	field := flag.String("field", "", "sweep mode: scenario field to vary (delay|rate|fault_duration)")
	from := flag.String("from", "", "sweep mode: range start (duration like 1s, or a number)")
	to := flag.String("to", "", "sweep mode: range end")
	steps := flag.Int("steps", 4, "sweep mode: number of evenly spaced points")
	field2 := flag.String("field2", "", "grid mode: second field to vary (turns the sweep into a 2-D grid)")
	from2 := flag.String("from2", "", "grid mode: second-field range start")
	to2 := flag.String("to2", "", "grid mode: second-field range end")
	steps2 := flag.Int("steps2", 4, "grid mode: second-field point count")
	metric := flag.String("metric", "tentative", "grid/repeat mode: report metric rendered")
	parallel := flag.Int("parallel", 1, "sweep/grid/fuzz: concurrent virtual runs (0 = one per core, 1 = serial)")
	repeat := flag.Int("repeat", 1, "sweep mode: run each value N times with derived seeds (min/mean/max per metric)")
	seed := flag.Int64("seed", 1, "fuzz mode: master seed for scenario generation")
	runs := flag.Int("runs", 100, "fuzz mode: number of generated scenarios")
	outDir := flag.String("out", "", "fuzz mode: directory for minimized failing specs")
	noShrink := flag.Bool("no-shrink", false, "fuzz mode: report raw failing specs without minimizing")
	tracePath := flag.String("trace", "", "scenario mode: write the per-replica protocol event trace to FILE (- = stderr)")
	genSeed := flag.Int64("gen-seed", 0, "scenario mode: run the fuzzer-generated spec for this spec seed instead of a file")
	failOnFinding := flag.Bool("fail-on-finding", false, "fuzz/soak mode: exit non-zero when any finding is reported")
	budget := flag.Duration("budget", 0, "soak mode: wall-clock budget (e.g. 10m); 0 = -batches decides")
	batchRuns := flag.Int("batch", 32, "soak mode: specs per batch (the checkpoint granularity)")
	batches := flag.Int("batches", 0, "soak mode: total batch cap, counting checkpointed batches (0 = -budget decides)")
	checkpoint := flag.String("checkpoint", "", "soak mode: campaign state file for interrupt/resume")
	mutateDirs := flag.String("mutate", "", "soak mode: comma-separated spec directories to mutate (e.g. scenarios/corpus,scenarios)")
	differential := flag.Bool("differential", false, "soak mode: also run the differential oracles on runs the normal oracles pass")
	perTuple := flag.Bool("per-tuple", false, "run on the reference per-tuple data plane instead of the staged batch plane (identical output, slower)")
	benchRuns := flag.Int("bench-runs", 3, "bench mode: wall-clock repetitions per (scenario, plane); best-of wins")
	minSpeedup := flag.Float64("min-speedup", 0, "bench mode: fail unless every fault-free batch run beats per-tuple by this factor (0 = report only)")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "worker":
		runWorkerCmd(args[1:])
		return
	case "cluster":
		runClusterCmd(args[1:])
		return
	case "bench-net":
		runBenchNet(args[1:])
		return
	case "scenario":
		if len(args) < 2 && *genSeed == 0 {
			fmt.Fprintf(os.Stderr, "usage: borealis-sim [-quick] [-json] [-no-audit] [-trace FILE] scenario <file.json>...\n")
			fmt.Fprintf(os.Stderr, "       borealis-sim ... [-trace FILE] -gen-seed S scenario\n")
			os.Exit(2)
		}
		opts := scenario.Options{Quick: *quick, SkipConsistency: *noAudit, PerTuple: *perTuple}
		closeTrace := installTrace(&opts, *tracePath)
		runScenarios(args[1:], *genSeed, opts, *asJSON, nil)
		closeTrace()
		return
	case "realtime":
		if len(args) < 2 {
			fmt.Fprintf(os.Stderr, "usage: borealis-sim [-quick] [-json] [-no-audit] [-speed N] realtime <file.json>...\n")
			os.Exit(2)
		}
		mk := func() runtime.Runtime { return runtime.NewWall(*speed) }
		runScenarios(args[1:], 0, scenario.Options{Quick: *quick, SkipConsistency: *noAudit, PerTuple: *perTuple}, *asJSON, mk)
		return
	case "sweep":
		if len(args) != 2 || *field == "" || *from == "" || *to == "" {
			fmt.Fprintf(os.Stderr, "usage: borealis-sim [-quick] [-json] [-no-audit] [-parallel N] -field F -from A -to B [-steps N] [-field2 G -from2 C -to2 D [-steps2 M] [-metric M]] [-repeat R] sweep <file.json>\n")
			os.Exit(2)
		}
		opts := scenario.Options{Quick: *quick, SkipConsistency: *noAudit, Parallelism: *parallel, PerTuple: *perTuple}
		if *field2 != "" {
			if *from2 == "" || *to2 == "" {
				fmt.Fprintf(os.Stderr, "borealis-sim: -field2 needs -from2 and -to2\n")
				os.Exit(2)
			}
			if *repeat > 1 {
				fmt.Fprintf(os.Stderr, "borealis-sim: -repeat combines with one-dimensional sweeps, not grids\n")
				os.Exit(2)
			}
			runGrid(args[1],
				sweepAxis{*field, *from, *to, *steps},
				sweepAxis{*field2, *from2, *to2, *steps2},
				*metric, opts, *asJSON)
			return
		}
		if *repeat > 1 {
			runSweepRepeat(args[1], *field, *from, *to, *steps, *repeat, *metric, opts, *asJSON)
			return
		}
		runSweep(args[1], *field, *from, *to, *steps, opts, *asJSON)
		return
	case "bench":
		if len(args) < 2 {
			fmt.Fprintf(os.Stderr, "usage: borealis-sim [-quick] [-json] [-bench-runs N] [-min-speedup X] bench <file.json>...\n")
			os.Exit(2)
		}
		runBench(args[1:], *benchRuns, *quick, *minSpeedup, *asJSON)
		return
	case "fuzz":
		if len(args) != 1 {
			fmt.Fprintf(os.Stderr, "usage: borealis-sim [-json] [-parallel N] [-seed S] [-runs N] [-out DIR] [-no-shrink] fuzz\n")
			os.Exit(2)
		}
		runFuzz(fuzz.Options{
			Seed:        *seed,
			Runs:        *runs,
			Parallelism: *parallel,
			NoShrink:    *noShrink,
		}, *outDir, *asJSON, *failOnFinding)
		return
	case "soak":
		if len(args) != 1 {
			fmt.Fprintf(os.Stderr, "usage: borealis-sim [-json] [-parallel N] [-seed S] [-batch N] [-batches N] [-budget D] [-mutate DIRS] [-differential] [-checkpoint FILE] [-out DIR] [-fail-on-finding] soak\n")
			os.Exit(2)
		}
		runSoak(fuzz.SoakOptions{
			Seed:         *seed,
			BatchRuns:    *batchRuns,
			MaxBatches:   *batches,
			Budget:       *budget,
			Parallelism:  *parallel,
			Differential: *differential,
			Checkpoint:   *checkpoint,
		}, *mutateDirs, *outDir, *asJSON, *failOnFinding)
		return
	}
	opts := experiment.Options{Quick: *quick, PerTuple: *perTuple}
	want := map[string]bool{}
	for _, a := range args {
		if a == "all" {
			for _, e := range experiments {
				want[e.name] = true
			}
			continue
		}
		found := false
		for _, e := range experiments {
			if e.name == a {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n\n", a)
			usage()
			os.Exit(2)
		}
		want[a] = true
	}
	first := true
	for _, e := range experiments {
		if !want[e.name] {
			continue
		}
		if !first {
			fmt.Println()
		}
		first = false
		start := time.Now()
		fmt.Printf("=== %s — %s ===\n", e.name, e.desc)
		e.run(opts, os.Stdout)
		fmt.Printf("(%s in %.1fs wall time)\n", e.name, time.Since(start).Seconds())
	}
}

// installTrace opens the -trace destination and wires it into the options
// as a line-oriented protocol event sink; the returned closer flushes it.
// An empty path is a no-op.
func installTrace(opts *scenario.Options, path string) func() {
	if path == "" {
		return func() {}
	}
	w := os.Stderr
	closeFn := func() {}
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "borealis-sim: %v\n", err)
			os.Exit(1)
		}
		w = f
		closeFn = func() { f.Close() }
	}
	opts.Trace = func(atUS int64, replica, event, detail string) {
		fmt.Fprintf(w, "%12.6fs  %-6s %-20s %s\n", float64(atUS)/1e6, replica, event, detail)
	}
	return closeFn
}

// runScenarios loads, runs and reports each scenario file in order. A
// failed eventual-consistency audit makes the whole invocation exit
// non-zero so CI smoke runs catch regressions. With -json, one file emits
// a single report object (the golden-file form); several files emit one
// JSON array so the output stays machine-parseable. A non-nil mkRuntime
// supplies a fresh execution substrate per file (realtime mode: one wall
// clock per run, since a clock cannot be rewound). A non-zero genSeed
// appends the fuzzer-generated spec for that spec seed — the trace/triage
// path for a campaign finding without materializing its JSON first.
func runScenarios(paths []string, genSeed int64, opts scenario.Options, asJSON bool, mkRuntime func() runtime.Runtime) {
	auditFailed := false
	var reports []*scenario.Report
	specs := make([]*scenario.Spec, 0, len(paths)+1)
	for _, path := range paths {
		spec, err := scenario.Load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "borealis-sim: %v\n", err)
			os.Exit(1)
		}
		specs = append(specs, spec)
	}
	if genSeed != 0 {
		specs = append(specs, fuzz.GenSpec(genSeed))
	}
	for i, spec := range specs {
		if mkRuntime != nil {
			opts.Runtime = mkRuntime()
		}
		start := time.Now()
		rep, err := scenario.Run(spec, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "borealis-sim: %s: %v\n", spec.Name, err)
			os.Exit(1)
		}
		if rep.Consistency != nil && !rep.Consistency.OK {
			auditFailed = true
		}
		if asJSON {
			reports = append(reports, rep)
			continue
		}
		if i > 0 {
			fmt.Println()
		}
		rep.Print(os.Stdout)
		fmt.Printf("(%s in %.1fs wall time)\n", spec.Name, time.Since(start).Seconds())
	}
	if asJSON {
		var b []byte
		var err error
		if len(reports) == 1 {
			b, err = reports[0].JSON()
		} else {
			b, err = json.MarshalIndent(reports, "", "  ")
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "borealis-sim: %v\n", err)
			os.Exit(1)
		}
		if len(b) > 0 && b[len(b)-1] != '\n' {
			b = append(b, '\n')
		}
		os.Stdout.Write(b)
	}
	if auditFailed {
		fmt.Fprintf(os.Stderr, "borealis-sim: eventual-consistency audit FAILED\n")
		os.Exit(1)
	}
}

// parseSweepBound reads a sweep range endpoint: a Go duration ("1s",
// "250ms") converted to seconds, or a bare number.
func parseSweepBound(s string) (float64, error) {
	if d, err := time.ParseDuration(s); err == nil {
		return d.Seconds(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad sweep bound %q: want a duration (1s) or a number", s)
	}
	return v, nil
}

// runSweep varies one field of a scenario across a range and prints the
// per-step metrics table (or, with -json, the rows with full reports).
func runSweep(path, field, fromS, toS string, steps int, opts scenario.Options, asJSON bool) {
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "borealis-sim: %v\n", err)
		os.Exit(1)
	}
	spec, err := scenario.Load(path)
	if err != nil {
		fail(err)
	}
	from, err := parseSweepBound(fromS)
	if err != nil {
		fail(err)
	}
	to, err := parseSweepBound(toS)
	if err != nil {
		fail(err)
	}
	start := time.Now()
	rows, err := scenario.Sweep(spec, scenario.SweepSpec{Field: field, From: from, To: to, Steps: steps}, opts)
	if err != nil {
		fail(err)
	}
	if asJSON {
		b, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			fail(err)
		}
		os.Stdout.Write(append(b, '\n'))
	} else {
		fmt.Printf("sweep %s: %s from %s to %s in %d steps\n", spec.Name, field, fromS, toS, steps)
		scenario.PrintSweep(os.Stdout, field, rows)
		fmt.Printf("(%d runs in %.1fs wall time)\n", len(rows), time.Since(start).Seconds())
	}
	for _, r := range rows {
		if r.Report.Consistency != nil && !r.Report.Consistency.OK {
			fmt.Fprintf(os.Stderr, "borealis-sim: eventual-consistency audit FAILED at %s=%g\n", field, r.Value)
			os.Exit(1)
		}
	}
}

// runSweepRepeat runs each swept value as a seed family and prints the
// per-value min/mean/max table of the chosen metric (or, with -json, the
// rows with every report and full per-metric stats).
func runSweepRepeat(path, field, fromS, toS string, steps, repeat int, metric string, opts scenario.Options, asJSON bool) {
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "borealis-sim: %v\n", err)
		os.Exit(1)
	}
	spec, err := scenario.Load(path)
	if err != nil {
		fail(err)
	}
	from, err := parseSweepBound(fromS)
	if err != nil {
		fail(err)
	}
	to, err := parseSweepBound(toS)
	if err != nil {
		fail(err)
	}
	start := time.Now()
	rows, err := scenario.SweepRepeat(spec, scenario.SweepSpec{Field: field, From: from, To: to, Steps: steps}, repeat, opts)
	if err != nil {
		fail(err)
	}
	if asJSON {
		b, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			fail(err)
		}
		os.Stdout.Write(append(b, '\n'))
	} else {
		fmt.Printf("sweep %s: %s from %s to %s in %d steps × %d seeds\n", spec.Name, field, fromS, toS, steps, repeat)
		if err := scenario.PrintSweepRepeat(os.Stdout, field, metric, rows); err != nil {
			fail(err)
		}
		fmt.Printf("(%d runs in %.1fs wall time)\n", steps*repeat, time.Since(start).Seconds())
	}
	for _, row := range rows {
		for _, r := range row.Reports {
			if r.Consistency != nil && !r.Consistency.OK {
				fmt.Fprintf(os.Stderr, "borealis-sim: eventual-consistency audit FAILED at %s=%g seed=%d\n", field, row.Value, r.Seed)
				os.Exit(1)
			}
		}
	}
}

// runFuzz runs a fuzzing campaign and renders its deterministic summary.
// By default findings do not fail the invocation — fuzzing is
// exploration, and CI compares two invocations' output for determinism —
// but -fail-on-finding turns any finding into a non-zero exit now that a
// clean protocol is the expected state. A campaign that cannot run at
// all always fails.
func runFuzz(opts fuzz.Options, outDir string, asJSON, failOnFinding bool) {
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "borealis-sim: %v\n", err)
		os.Exit(1)
	}
	start := time.Now()
	sum, err := fuzz.Campaign(opts)
	if err != nil {
		fail(err)
	}
	if outDir != "" && len(sum.Failures) > 0 {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			fail(err)
		}
		for i := range sum.Failures {
			f := &sum.Failures[i]
			spec := f.Shrunk
			if spec == nil {
				spec = f.Spec
			}
			b, err := json.MarshalIndent(spec, "", "  ")
			if err != nil {
				fail(err)
			}
			name := fmt.Sprintf("fuzz-%03d-%s.json", f.Run, f.Findings[0].Oracle)
			if err := os.WriteFile(filepath.Join(outDir, name), append(b, '\n'), 0o644); err != nil {
				fail(err)
			}
		}
	}
	if asJSON {
		b, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			fail(err)
		}
		os.Stdout.Write(append(b, '\n'))
	} else {
		sum.Print(os.Stdout)
		fmt.Printf("(%d runs in %.1fs wall time)\n", sum.Runs, time.Since(start).Seconds())
	}
	if failOnFinding && len(sum.Failures) > 0 {
		fmt.Fprintf(os.Stderr, "borealis-sim: %d failing runs (-fail-on-finding)\n", len(sum.Failures))
		os.Exit(1)
	}
}

// runSoak runs a checkpointed soak campaign: the resumable, corpus-
// mutating big sibling of runFuzz. The mutation pool is loaded from
// -mutate's directories; minimized unique findings land in -out.
func runSoak(opts fuzz.SoakOptions, mutateDirs, outDir string, asJSON, failOnFinding bool) {
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "borealis-sim: %v\n", err)
		os.Exit(1)
	}
	if mutateDirs != "" {
		pool, err := fuzz.LoadPool(strings.Split(mutateDirs, ",")...)
		if err != nil {
			fail(err)
		}
		if len(pool) == 0 {
			fail(fmt.Errorf("no specs found under -mutate %s", mutateDirs))
		}
		opts.MutationPool = pool
	}
	if !asJSON {
		opts.Log = os.Stdout
	}
	start := time.Now()
	st, err := fuzz.Soak(opts)
	if err != nil {
		fail(err)
	}
	if outDir != "" && len(st.Findings) > 0 {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			fail(err)
		}
		for _, f := range st.Findings {
			spec := f.Shrunk
			if spec == nil {
				spec = f.Spec
			}
			b, err := json.MarshalIndent(spec, "", "  ")
			if err != nil {
				fail(err)
			}
			name := "soak-" + strings.ReplaceAll(f.Key, ":", "-") + ".json"
			if err := os.WriteFile(filepath.Join(outDir, name), append(b, '\n'), 0o644); err != nil {
				fail(err)
			}
		}
	}
	if asJSON {
		b, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			fail(err)
		}
		os.Stdout.Write(append(b, '\n'))
	} else {
		st.Print(os.Stdout)
		fmt.Printf("(%d runs in %.1fs wall time)\n", st.Runs, time.Since(start).Seconds())
	}
	if failOnFinding && len(st.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "borealis-sim: %d unique findings (-fail-on-finding)\n", len(st.Findings))
		os.Exit(1)
	}
}

// sweepAxis bundles one sweep dimension's raw flag values.
type sweepAxis struct {
	field, from, to string
	steps           int
}

// parse resolves the axis's range bounds into a SweepSpec.
func (a sweepAxis) parse() (scenario.SweepSpec, error) {
	from, err := parseSweepBound(a.from)
	if err != nil {
		return scenario.SweepSpec{}, err
	}
	to, err := parseSweepBound(a.to)
	if err != nil {
		return scenario.SweepSpec{}, err
	}
	return scenario.SweepSpec{Field: a.field, From: from, To: to, Steps: a.steps}, nil
}

// runGrid crosses two sweep axes into a Steps×Steps2 grid of independent
// runs and renders one report metric as a 2-D matrix (or, with -json, the
// row-major cells with full reports).
func runGrid(path string, ax1, ax2 sweepAxis, metric string, opts scenario.Options, asJSON bool) {
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "borealis-sim: %v\n", err)
		os.Exit(1)
	}
	spec, err := scenario.Load(path)
	if err != nil {
		fail(err)
	}
	var g scenario.GridSpec
	if g.Field1, err = ax1.parse(); err != nil {
		fail(err)
	}
	if g.Field2, err = ax2.parse(); err != nil {
		fail(err)
	}
	// Reject a typoed -metric before burning minutes of grid compute.
	if !asJSON {
		if _, err := scenario.Metric(&scenario.Report{}, metric); err != nil {
			fail(err)
		}
	}
	start := time.Now()
	cells, err := scenario.Grid(spec, g, opts)
	if err != nil {
		fail(err)
	}
	if asJSON {
		b, err := json.MarshalIndent(cells, "", "  ")
		if err != nil {
			fail(err)
		}
		os.Stdout.Write(append(b, '\n'))
	} else {
		fmt.Printf("grid %s: %s × %s (%d × %d cells)\n",
			spec.Name, ax1.field, ax2.field, ax1.steps, ax2.steps)
		if err := scenario.PrintGrid(os.Stdout, g, cells, metric); err != nil {
			fail(err)
		}
		fmt.Printf("(%d runs in %.1fs wall time)\n", len(cells), time.Since(start).Seconds())
	}
	for _, c := range cells {
		if c.Report.Consistency != nil && !c.Report.Consistency.OK {
			fmt.Fprintf(os.Stderr, "borealis-sim: eventual-consistency audit FAILED at %s=%g %s=%g\n",
				ax1.field, c.Value1, ax2.field, c.Value2)
			os.Exit(1)
		}
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: borealis-sim [-quick] <experiment>...|all\n")
	fmt.Fprintf(os.Stderr, "       borealis-sim [-quick] [-json] [-no-audit] [-trace FILE] [-gen-seed S] scenario <file.json>...\n")
	fmt.Fprintf(os.Stderr, "       borealis-sim [-quick] [-json] [-no-audit] [-speed N] realtime <file.json>...\n")
	fmt.Fprintf(os.Stderr, "       borealis-sim [-quick] [-json] [-no-audit] [-parallel N] -field F -from A -to B [-steps N] sweep <file.json>\n")
	fmt.Fprintf(os.Stderr, "       borealis-sim ... -field F -from A -to B -field2 G -from2 C -to2 D [-steps2 M] [-metric M] sweep <file.json>\n")
	fmt.Fprintf(os.Stderr, "       borealis-sim ... -field F -from A -to B [-steps N] -repeat R [-metric M] sweep <file.json>\n")
	fmt.Fprintf(os.Stderr, "       borealis-sim [-json] [-parallel N] [-seed S] [-runs N] [-out DIR] [-no-shrink] [-fail-on-finding] fuzz\n")
	fmt.Fprintf(os.Stderr, "       borealis-sim [-json] [-parallel N] [-seed S] [-batch N] [-batches N] [-budget D] [-mutate DIRS] [-differential] [-checkpoint FILE] [-out DIR] [-fail-on-finding] soak\n")
	fmt.Fprintf(os.Stderr, "       borealis-sim cluster [-workers N] [-speed N] [-quick] [-json] [-fault-mode kill|stop] [-no-audit] <file.json>\n")
	fmt.Fprintf(os.Stderr, "       borealis-sim worker -spec FILE -owned a,b,... [-worker-name W] [-listen ADDR] [-speed N] [-start-us T] [-recover] [-quick]\n")
	fmt.Fprintf(os.Stderr, "       borealis-sim bench-net [-workers N] [-speed N] [-quick] [-out FILE] <file.json>\n\nexperiments:\n")
	for _, e := range experiments {
		fmt.Fprintf(os.Stderr, "  %-16s %s\n", e.name, e.desc)
	}
	fmt.Fprintf(os.Stderr, "\nscenario files: see scenarios/ and docs/SCENARIOS.md\n")
}
