package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"borealis/internal/cluster"
	"borealis/internal/runtime"
	"borealis/internal/scenario"
)

// runWorkerCmd is the `borealis-sim worker` subcommand: one cluster worker
// process, spawned and controlled by the boss over stdio. Flags follow the
// subcommand name (the boss builds the argv), so it parses its own FlagSet
// rather than the global flags.
func runWorkerCmd(args []string) {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	specPath := fs.String("spec", "", "scenario file (the same file the boss loaded)")
	name := fs.String("worker-name", "w0", "label for this worker's report fragment")
	listen := fs.String("listen", "127.0.0.1:0", "TCP listen address for the transport")
	owned := fs.String("owned", "", "comma-separated endpoint IDs this worker hosts")
	speed := fs.Float64("speed", 1, "wall clock time-scale factor")
	startUS := fs.Int64("start-us", 0, "start the clock at this scenario microsecond (respawn)")
	recover := fs.Bool("recover", false, "bring hosted replicas up through §4.5 crash recovery")
	quick := fs.Bool("quick", false, "use the spec's reduced duration")
	fs.Parse(args)
	if *specPath == "" || *owned == "" {
		fmt.Fprintf(os.Stderr, "usage: borealis-sim worker -spec FILE -owned a,b,... [-worker-name W] [-listen ADDR] [-speed N] [-start-us T] [-recover] [-quick]\n")
		os.Exit(2)
	}
	spec, err := scenario.Load(*specPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "borealis-sim: %v\n", err)
		os.Exit(1)
	}
	cfg := cluster.WorkerConfig{
		Spec:    spec,
		Name:    *name,
		Listen:  *listen,
		Owned:   strings.Split(*owned, ","),
		Quick:   *quick,
		Speed:   *speed,
		StartUS: *startUS,
		Recover: *recover,
	}
	if err := cluster.RunWorker(cfg, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "borealis-sim: worker %s: %v\n", *name, err)
		os.Exit(1)
	}
}

// runClusterCmd is the `borealis-sim cluster` subcommand: the boss. It
// spawns the workers, drives the real fault schedule, merges their report
// fragments and audits Definition 1 against a virtual-clock reference run.
func runClusterCmd(args []string) {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	workers := fs.Int("workers", 2, "number of worker processes")
	speed := fs.Float64("speed", 1, "wall clock time-scale factor (1 = true real time)")
	quick := fs.Bool("quick", false, "use the spec's reduced duration")
	asJSON := fs.Bool("json", false, "emit the merged report as canonical JSON")
	faultMode := fs.String("fault-mode", cluster.FaultModeKill, "crash fault translation: kill (SIGKILL + respawn) or stop (SIGSTOP/SIGCONT)")
	noAudit := fs.Bool("no-audit", false, "skip the consistency reference run")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "usage: borealis-sim cluster [-workers N] [-speed N] [-quick] [-json] [-fault-mode kill|stop] [-no-audit] <file.json>\n")
		os.Exit(2)
	}
	start := time.Now()
	res, err := cluster.Run(cluster.Options{
		SpecPath:  fs.Arg(0),
		Workers:   *workers,
		Quick:     *quick,
		Speed:     *speed,
		FaultMode: *faultMode,
		SkipAudit: *noAudit,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "borealis-sim: %v\n", err)
		os.Exit(1)
	}
	if *asJSON {
		b, err := res.Report.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "borealis-sim: %v\n", err)
			os.Exit(1)
		}
		if len(b) > 0 && b[len(b)-1] != '\n' {
			b = append(b, '\n')
		}
		os.Stdout.Write(b)
	} else {
		res.Report.Print(os.Stdout)
		fmt.Printf("(%d workers in %.1fs wall time)\n", *workers, time.Since(start).Seconds())
	}
	if res.Report.Consistency != nil && !res.Report.Consistency.OK {
		fmt.Fprintf(os.Stderr, "borealis-sim: eventual-consistency audit FAILED\n")
		os.Exit(1)
	}
}

// NetBenchRow is one data-plane measurement of the bench-net subcommand.
type NetBenchRow struct {
	Scenario string `json:"scenario"`
	// Plane is "netsim" (single process, simulated network on a wall
	// clock) or "tcp" (real worker processes over localhost TCP).
	Plane     string  `json:"plane"`
	Workers   int     `json:"workers"`
	Tuples    uint64  `json:"tuples"`
	WallS     float64 `json:"wall_s"`
	TuplesSec float64 `json:"tuples_per_sec"`
}

// NetBenchSummary is bench-net's JSON output (BENCH_PR8.json). The planes
// may process slightly different tuple totals — the TCP plane's workers
// stop at the horizon and in-flight stragglers are lost — so the metric is
// each plane's own tuples/sec, not a differential work check.
type NetBenchSummary struct {
	Speed float64       `json:"speed"`
	Load  float64       `json:"load"`
	Rows  []NetBenchRow `json:"rows"`
	// RatioTCPOverNetsim is the over-the-wire throughput as a fraction of
	// the in-process fabric's — the cost of real frames on real sockets.
	RatioTCPOverNetsim float64 `json:"ratio_tcp_over_netsim"`
	// DroppedCtl and CtlStalls sum the tcp plane's control-frame counters
	// across workers. Flow control may stall a control frame under
	// saturation (CtlStalls counts those waits) but must never shed one:
	// a non-zero DroppedCtl under bench load is a flow-control bug, and
	// -fail-on-ctl-drop turns it into a non-zero exit for CI.
	DroppedCtl uint64 `json:"dropped_ctl"`
	CtlStalls  uint64 `json:"ctl_stalls"`
}

// runBenchNet measures engine tuples/sec for the same scenario on the
// in-process netsim fabric versus a real multi-process TCP cluster. Both
// planes run on wall clocks at the same speed with the source rates
// multiplied by -load, so with enough load the run is data-plane bound —
// the clocks fall behind schedule and never sleep — and the rate measures
// what each fabric can actually move, not the spec's pacing.
func runBenchNet(args []string) {
	fs := flag.NewFlagSet("bench-net", flag.ExitOnError)
	workers := fs.Int("workers", 2, "worker processes for the tcp plane")
	speed := fs.Float64("speed", 1, "wall clock time-scale factor for both planes")
	load := fs.Float64("load", 100, "source-rate multiplier (high enough to saturate the data plane)")
	durS := fs.Float64("dur", 3, "benchmark duration in scenario seconds (0 = the spec's)")
	out := fs.String("out", "", "also write the JSON summary to this file")
	failOnCtlDrop := fs.Bool("fail-on-ctl-drop", false, "exit non-zero if the tcp plane dropped any control frame")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "usage: borealis-sim bench-net [-workers N] [-speed N] [-load X] [-dur S] [-out FILE] [-fail-on-ctl-drop] <file.json>\n")
		os.Exit(2)
	}
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "borealis-sim: %v\n", err)
		os.Exit(1)
	}
	spec, err := scenario.Load(fs.Arg(0))
	if err != nil {
		fail(err)
	}
	// The comparison is about steady-state data-plane cost: strip the
	// fault schedule, scale the offered load, shorten the horizon.
	clean := spec.Clone()
	clean.Faults = nil
	clean.VerifyConsistency = false
	for i := range clean.Sources {
		clean.Sources[i].Rate *= *load
	}
	if *durS > 0 {
		clean.DurationS = *durS
		clean.QuickDurationS = 0
	}

	durUS := scenario.DurationUS(clean, false)
	sum := NetBenchSummary{Speed: *speed, Load: *load}

	dep, err := scenario.Build(clean, scenario.Options{
		SkipConsistency: true, NoAudit: true,
		Runtime: runtime.NewWall(*speed),
	})
	if err != nil {
		fail(err)
	}
	t0 := time.Now()
	dep.Start()
	dep.RunFor(durUS)
	wall := time.Since(t0).Seconds()
	var processed uint64
	for _, group := range dep.Nodes {
		for _, n := range group {
			processed += n.Engine().Processed
		}
	}
	sum.Rows = append(sum.Rows, NetBenchRow{
		Scenario: clean.Name, Plane: "netsim", Workers: 1,
		Tuples: processed, WallS: wall, TuplesSec: float64(processed) / wall,
	})

	// Write the stripped spec to a temp file — the workers reload it.
	tmp, err := os.CreateTemp(".", "bench-net-*.json")
	if err != nil {
		fail(err)
	}
	defer os.Remove(tmp.Name())
	b, err := json.Marshal(clean)
	if err != nil {
		fail(err)
	}
	if _, err := tmp.Write(b); err != nil {
		fail(err)
	}
	tmp.Close()

	res, err := cluster.Run(cluster.Options{
		SpecPath:  tmp.Name(),
		Workers:   *workers,
		Speed:     *speed,
		SkipAudit: true,
	})
	if err != nil {
		fail(err)
	}
	var tcpProcessed uint64
	for _, f := range res.Fragments {
		if f != nil {
			tcpProcessed += f.Processed
			sum.DroppedCtl += f.DroppedCtl
			sum.CtlStalls += f.CtlStalls
		}
	}
	sum.Rows = append(sum.Rows, NetBenchRow{
		Scenario: clean.Name, Plane: "tcp", Workers: *workers,
		Tuples: tcpProcessed, WallS: res.WallS, TuplesSec: float64(tcpProcessed) / res.WallS,
	})
	sum.RatioTCPOverNetsim = sum.Rows[1].TuplesSec / sum.Rows[0].TuplesSec

	jb, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		fail(err)
	}
	jb = append(jb, '\n')
	os.Stdout.Write(jb)
	if *out != "" {
		if err := os.WriteFile(*out, jb, 0o644); err != nil {
			fail(err)
		}
	}
	if *failOnCtlDrop && sum.DroppedCtl > 0 {
		fmt.Fprintf(os.Stderr, "borealis-sim: bench-net dropped %d control frames under load\n", sum.DroppedCtl)
		os.Exit(1)
	}
}
