package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"borealis/internal/scenario"
	"borealis/internal/vtime"
)

// BenchRow is one (scenario, fault schedule, data plane) measurement: the
// simulated workload is identical across rows of a (scenario, faulted)
// pair — the differential oracle guarantees the planes process the same
// tuples — so tuples/sec differences are pure data-plane cost.
type BenchRow struct {
	Scenario string `json:"scenario"`
	Faulted  bool   `json:"faulted"`
	Plane    string `json:"plane"` // "batch" or "per-tuple"
	Runs     int    `json:"runs"`
	// Tuples counts engine-processed tuples per run, summed over every
	// replica (deterministic: identical on every run and both planes).
	Tuples uint64 `json:"tuples"`
	// WallS is the best-of-runs wall-clock time of Start+RunFor — the
	// build/compile cost is excluded, so the rate is steady-state.
	WallS        float64 `json:"wall_s"`
	TuplesPerSec float64 `json:"tuples_per_sec"`
}

// BenchPair summarizes one (scenario, faulted) comparison.
type BenchPair struct {
	Scenario string  `json:"scenario"`
	Faulted  bool    `json:"faulted"`
	Speedup  float64 `json:"speedup_batch_over_tuple"`
}

// BenchSummary is the bench subcommand's JSON output.
type BenchSummary struct {
	Rows  []BenchRow  `json:"rows"`
	Pairs []BenchPair `json:"pairs"`
}

// benchOne runs one (spec, plane) combination repeats times and returns
// the best-of row. The first run's processed-tuple count is checked
// against every repeat: a drift would mean the run is not deterministic
// and the wall-clock numbers are comparing different work.
func benchOne(spec *scenario.Spec, perTuple bool, repeats int, quick bool) (BenchRow, error) {
	row := BenchRow{Scenario: spec.Name, Faulted: len(spec.Faults) > 0, Runs: repeats, WallS: math.Inf(1)}
	row.Plane = "batch"
	if perTuple {
		row.Plane = "per-tuple"
	}
	durS := spec.DurationS
	if quick {
		if spec.QuickDurationS > 0 {
			durS = spec.QuickDurationS
		} else {
			durS = math.Min(durS, 20)
		}
	}
	durUS := int64(durS * float64(vtime.Second))
	for r := 0; r < repeats; r++ {
		dep, err := scenario.Build(spec, scenario.Options{Quick: quick, SkipConsistency: true, NoAudit: true, PerTuple: perTuple})
		if err != nil {
			return row, err
		}
		start := time.Now()
		dep.Start()
		dep.RunFor(durUS)
		wall := time.Since(start).Seconds()
		var processed uint64
		for _, group := range dep.Nodes {
			for _, n := range group {
				processed += n.Engine().Processed
			}
		}
		if r == 0 {
			row.Tuples = processed
		} else if processed != row.Tuples {
			return row, fmt.Errorf("%s (%s): processed-tuple count drifted across runs: %d then %d",
				spec.Name, row.Plane, row.Tuples, processed)
		}
		if wall < row.WallS {
			row.WallS = wall
		}
	}
	row.TuplesPerSec = float64(row.Tuples) / row.WallS
	return row, nil
}

// runBench measures tuples/sec on both data planes for each scenario file,
// fault-free (the spec with its fault schedule stripped) and as-spec'd.
// With minSpeedup > 0 the invocation fails unless every fault-free pair's
// batch plane beats the per-tuple plane by at least that factor — the CI
// regression gate for the staged data plane.
func runBench(paths []string, repeats int, quick bool, minSpeedup float64, asJSON bool) {
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "borealis-sim: %v\n", err)
		os.Exit(1)
	}
	var sum BenchSummary
	for _, path := range paths {
		spec, err := scenario.Load(path)
		if err != nil {
			fail(err)
		}
		variants := []*scenario.Spec{spec}
		if len(spec.Faults) > 0 {
			clean := spec.Clone()
			clean.Faults = nil
			clean.VerifyConsistency = false
			variants = []*scenario.Spec{clean, spec}
		}
		for _, v := range variants {
			var pair [2]BenchRow
			for i, perTuple := range []bool{false, true} {
				row, err := benchOne(v, perTuple, repeats, quick)
				if err != nil {
					fail(err)
				}
				pair[i] = row
				sum.Rows = append(sum.Rows, row)
			}
			if pair[0].Tuples != pair[1].Tuples {
				fail(fmt.Errorf("%s (faulted=%v): planes processed different tuple counts: batch %d vs per-tuple %d",
					v.Name, len(v.Faults) > 0, pair[0].Tuples, pair[1].Tuples))
			}
			sum.Pairs = append(sum.Pairs, BenchPair{
				Scenario: v.Name,
				Faulted:  len(v.Faults) > 0,
				Speedup:  pair[0].TuplesPerSec / pair[1].TuplesPerSec,
			})
		}
	}
	if asJSON {
		b, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			fail(err)
		}
		os.Stdout.Write(append(b, '\n'))
	} else {
		fmt.Printf("%-28s %-8s %-10s %12s %10s %14s\n", "scenario", "faults", "plane", "tuples", "wall_s", "tuples/sec")
		for _, r := range sum.Rows {
			faults := "none"
			if r.Faulted {
				faults = "spec"
			}
			fmt.Printf("%-28s %-8s %-10s %12d %10.3f %14.0f\n", r.Scenario, faults, r.Plane, r.Tuples, r.WallS, r.TuplesPerSec)
		}
		for _, p := range sum.Pairs {
			faults := "fault-free"
			if p.Faulted {
				faults = "faulted"
			}
			fmt.Printf("speedup %-28s %-10s %.2fx (batch over per-tuple)\n", p.Scenario, faults, p.Speedup)
		}
	}
	if minSpeedup > 0 {
		for _, p := range sum.Pairs {
			if !p.Faulted && p.Speedup < minSpeedup {
				fmt.Fprintf(os.Stderr, "borealis-sim: %s fault-free batch speedup %.2fx below required %.2fx\n",
					p.Scenario, p.Speedup, minSpeedup)
				os.Exit(1)
			}
		}
	}
}
