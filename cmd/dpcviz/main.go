// Command dpcviz dumps figure series as CSV for plotting.
//
// Usage:
//
//	dpcviz fig11a > fig11a.csv
//	dpcviz fig11b > fig11b.csv
//
// The output columns are time_ms, seq, type — the axes of Fig. 11. Sequence
// 0 rows are REC_DONE markers (the paper plots them on the x-axis).
package main

import (
	"fmt"
	"os"

	"borealis/internal/experiment"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: dpcviz fig11a|fig11b")
		os.Exit(2)
	}
	switch os.Args[1] {
	case "fig11a":
		experiment.Fig11(true, experiment.Options{}).TraceCSV(os.Stdout)
	case "fig11b":
		experiment.Fig11(false, experiment.Options{}).TraceCSV(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "unknown series %q\n", os.Args[1])
		os.Exit(2)
	}
}
